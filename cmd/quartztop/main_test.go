package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/obshttp"
	"github.com/quartz-emu/quartz/internal/runner"
	"github.com/quartz-emu/quartz/internal/sim"
)

// testServer spins up a real introspection server with a populated recorder
// and status board, exactly what quartztop polls in production.
func testServer(t *testing.T, withBoard bool) *httptest.Server {
	t.Helper()
	rec := obs.New(0)
	for i := 0; i < 20; i++ {
		start := sim.Time(i) * sim.Millisecond
		rec.EpochClosed(obs.EpochRecord{
			PID: 1, TID: 0, Start: start, End: start + sim.Millisecond,
			Reason: "max", StallCycles: 5000, L3MissLocal: 100,
			Delay: 20 * sim.Microsecond, Injected: 18 * sim.Microsecond,
		})
	}
	o := obshttp.Options{Recorder: rec}
	if withBoard {
		board := runner.NewStatusBoard()
		board.SuiteStarted([]string{"overhead"}, []int{4})
		board.JobFinished(runner.Result{JobID: "overhead/0", Experiment: "overhead", Status: runner.StatusOK})
		o.Status = board
	}
	srv := httptest.NewServer(obshttp.Handler(o))
	t.Cleanup(srv.Close)
	return srv
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestOnceProbesAllEndpoints: the -once smoke mode must validate /metrics,
// /ledger and /runs and summarize each.
func TestOnceProbesAllEndpoints(t *testing.T) {
	srv := testServer(t, true)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "epochs closed 20") {
		t.Errorf("metrics summary wrong:\n%s", stdout)
	}
	if !strings.Contains(stdout, "ledger: total 20, page of 5 records") {
		t.Errorf("ledger summary wrong:\n%s", stdout)
	}
	if !strings.Contains(stdout, "runs: 1/4 jobs done") {
		t.Errorf("runs summary wrong:\n%s", stdout)
	}
}

// TestOnceWithoutRunner: /runs 404 is reported, not treated as an error.
func TestOnceWithoutRunner(t *testing.T) {
	srv := testServer(t, false)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "runs: no experiment runner attached") {
		t.Errorf("missing no-runner line:\n%s", stdout)
	}
}

// TestOnceUnreachableServer: a dead server is exit 1 with a clear error.
func TestOnceUnreachableServer(t *testing.T) {
	code, _, stderr := runCLI(t, "-addr", "http://127.0.0.1:1", "-once")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "quartztop:") {
		t.Errorf("stderr: %q", stderr)
	}
}

// TestMonitorRendersFrames: -n bounds the TUI loop so it renders frames and
// exits; the frame must carry the headline numbers.
func TestMonitorRendersFrames(t *testing.T) {
	srv := testServer(t, true)
	code, stdout, stderr := runCLI(t, "-addr", srv.URL, "-n", "2", "-interval", "10ms")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"quartztop — " + srv.URL,
		"epochs closed",
		"epoch len p50/p95/p99",
		"suite running — 1/4 jobs",
		"overhead",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("frame missing %q:\n%s", want, stdout)
		}
	}
}

// TestBadFlags: invalid invocations are usage errors.
func TestBadFlags(t *testing.T) {
	if code, _, _ := runCLI(t, "-interval", "0s"); code != 2 {
		t.Errorf("-interval 0: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

// TestAddrNormalization: a bare host:port gets the scheme prepended.
func TestAddrNormalization(t *testing.T) {
	srv := testServer(t, false)
	bare := strings.TrimPrefix(srv.URL, "http://")
	code, stdout, stderr := runCLI(t, "-addr", bare, "-once")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "epochs closed 20") {
		t.Errorf("probe over normalized addr failed:\n%s", stdout)
	}
}

func TestBar(t *testing.T) {
	if got := bar(0, 0, 4); got != "----" {
		t.Errorf("bar(0,0) = %q", got)
	}
	if got := bar(2, 4, 4); got != "##.." {
		t.Errorf("bar(2,4) = %q", got)
	}
	if got := bar(9, 4, 4); got != "####" {
		t.Errorf("bar overflow = %q", got)
	}
}

func TestFmtNS(t *testing.T) {
	cases := map[float64]string{
		12:      "12ns",
		1500:    "1.5us",
		2500000: "2.5ms",
	}
	for in, want := range cases {
		if got := fmtNS(in); got != want {
			t.Errorf("fmtNS(%v) = %q, want %q", in, got, want)
		}
	}
}
