// Command quartzbench regenerates the paper's evaluation artifacts: every
// table and figure of §4 plus the §3.2 overhead accounting and the design
// ablations, printed as text tables.
//
// Experiments are decomposed into independent sweep-point jobs and executed
// on a worker pool (internal/runner); within one job, -trial-parallel runs
// the independent repeated trials (and paired Conf_1/Conf_2 or model-variant
// simulations) on their own goroutines. The rendered tables are
// byte-identical for every -parallel × -trial-parallel combination,
// including the serial -parallel 1 special case — see doc/parallelism.md. A
// crashed or timed-out job fails its experiment (and the exit code) without
// stopping the rest of the suite.
//
// Usage:
//
//	quartzbench -list
//	quartzbench -exp fig11,fig12 -scale quick
//	quartzbench -exp all -scale full -parallel 8 -json results.jsonl -o results.txt
//	quartzbench -exp fig12 -trace trace.json -metrics-out metrics.json
//	quartzbench -exp all -scale full -serve :8077 -ledger-out run.jsonl
//
// -trace writes a Chrome trace-event file (chrome://tracing / Perfetto) with
// every closed epoch as a slice and every delay injection as a flow-linked
// slice; -metrics / -metrics-out export the aggregated metrics registry as
// JSON. See doc/observability.md for the schema.
//
// -serve starts the live introspection HTTP server (/metrics, /ledger,
// /runs, /events) for the duration of the suite (plus -serve-linger);
// -ledger-out streams every epoch record to disk as it closes (JSONL or the
// compact binary framing via -ledger-format, size-rotated via
// -ledger-rotate-mb), removing the in-memory ledger bound. See
// doc/live-monitoring.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/quartz-emu/quartz/internal/experiments"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/obshttp"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/runner"
	"github.com/quartz-emu/quartz/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("quartzbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag      = fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scaleFlag    = fs.String("scale", "quick", "sweep scale: quick or full")
		outFlag      = fs.String("o", "", "also write output to this file")
		listFlag     = fs.Bool("list", false, "list experiment ids and exit")
		parallelFlag = fs.Int("parallel", 0, "concurrent jobs (0 = GOMAXPROCS, 1 = serial)")
		trialPar     = fs.Int("trial-parallel", 0, "concurrent trials/variants within one job (0 or 1 = serial)")
		jsonFlag     = fs.String("json", "", "write per-job JSONL results to this file")
		timeoutFlag  = fs.Duration("timeout", 0, "per-job timeout (0 = none)")
		retriesFlag  = fs.Int("retries", 0, "retries per failed job")
		progressFlag = fs.Bool("progress", false, "report job completion progress on stderr")
		traceFlag    = fs.String("trace", "", "write a Chrome trace-event file of every emulated run (open in chrome://tracing or Perfetto)")
		metricsFlag  = fs.Bool("metrics", false, "print a JSON metrics snapshot to stdout after the suite")
		metricsOut   = fs.String("metrics-out", "", "write the JSON metrics snapshot to this file")
		serveFlag    = fs.String("serve", "", "serve live introspection HTTP (/metrics /ledger /runs /events) on this address during the suite (e.g. :8077)")
		lingerFlag   = fs.Duration("serve-linger", 0, "keep the introspection server up this long after the suite finishes")
		ledgerOut    = fs.String("ledger-out", "", "stream every epoch record to this file as it closes (removes the in-memory ledger bound)")
		ledgerFormat = fs.String("ledger-format", "jsonl", "ledger sink encoding: jsonl or binary")
		ledgerRotMB  = fs.Int64("ledger-rotate-mb", 0, "rotate the ledger sink file after this many MiB (0 = never)")
		trafClients  = fs.String("traffic-clients", "", "comma-separated client counts overriding the scale's traffic-* sweep (e.g. 64,256,1024)")
		trafMixes    = fs.String("traffic-mixes", "", "comma-separated mix presets overriding the scale's traffic-* sweep (read-mostly, write-heavy, scan-blend)")
		trafPool     = fs.Int("traffic-pool", 0, "serving pool threads per traffic scenario, overriding the scale (0 = scale default)")
		trafLats     = fs.String("traffic-lats", "", "comma-separated emulated NVM latencies in ns overriding the scale's traffic-* sweep (e.g. 200,600,2000)")
		vtprofDir    = fs.String("vtprof", "", "write virtual-time profiles (per-job and merged, pprof .pb.gz + .folded) into this directory")
		servePprof   = fs.Bool("serve-pprof", false, "mount host-side net/http/pprof under /debug/pprof/ on the -serve server")
		writeLat     = fs.Float64("write-latency", 0, "NVM write-latency override in ns for the asymmetric experiments (0 = profile default)")
		nvmProf      = fs.String("nvm-profile", "", "comma-separated NVM profile names narrowing the asymmetric sweeps (e.g. optane-dcpmm,pcm)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Validate flag combinations before any experiment runs, mirroring the
	// upfront -exp id validation: a misconfiguration must fail in
	// milliseconds, not after the suite.
	sinkFormat, err := validateFlags(*listFlag, *parallelFlag, *trialPar, *retriesFlag,
		*serveFlag, *lingerFlag, *ledgerOut, *ledgerFormat, *ledgerRotMB, *servePprof)
	if err != nil {
		fmt.Fprintf(stderr, "quartzbench: %v\n", err)
		return 2
	}

	if *listFlag {
		for _, id := range experiments.All() {
			desc, _ := experiments.Describe(id)
			fmt.Fprintf(stdout, "%-18s %s\n", id, desc)
		}
		return 0
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(stderr, "quartzbench: unknown scale %q (quick|full)\n", *scaleFlag)
		return 2
	}
	scale.TrialParallel = *trialPar
	// The virtual-time profiler attaches per job through the scale; nil (the
	// default) keeps every simulation byte-identical to an unprofiled run.
	var profSuite *vtprof.Suite
	if *vtprofDir != "" {
		profSuite = vtprof.NewSuite()
		scale.Profiles = profSuite
	}
	if err := applyTrafficOverrides(&scale, *trafClients, *trafMixes, *trafPool, *trafLats); err != nil {
		fmt.Fprintf(stderr, "quartzbench: %v\n", err)
		return 2
	}
	if err := applyAsymOverrides(&scale, *writeLat, *nvmProf); err != nil {
		fmt.Fprintf(stderr, "quartzbench: %v\n", err)
		return 2
	}

	// Validate every id before running anything, so a typo in the last id
	// doesn't waste the minutes spent running the earlier ones.
	ids := experiments.All()
	if *expFlag != "all" {
		ids = nil
		var unknown []string
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if !experiments.Known(id) {
				unknown = append(unknown, id)
				continue
			}
			ids = append(ids, id)
		}
		if len(unknown) > 0 {
			fmt.Fprintf(stderr, "quartzbench: unknown experiment(s) %q (see -list)\n", unknown)
			return 2
		}
		if len(ids) == 0 {
			fmt.Fprintln(stderr, "quartzbench: no experiments selected")
			return 2
		}
	}

	var out io.Writer = stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintf(stderr, "quartzbench: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "quartzbench: closing output: %v\n", err)
			}
		}()
		out = io.MultiWriter(stdout, f)
	}

	cfg := runner.Config{
		Workers: *parallelFlag,
		Timeout: *timeoutFlag,
		Retries: *retriesFlag,
	}

	// Observability: one shared recorder collects the whole suite — runner
	// job outcomes directly, and per-epoch ledger records from every
	// emulator the experiment jobs attach (via the process-global default,
	// since jobs construct their environments internally). -progress also
	// attaches one so its lines can report live emulation rates. See
	// doc/observability.md.
	var rec *obs.Recorder
	if *traceFlag != "" || *metricsFlag || *metricsOut != "" || *progressFlag ||
		*serveFlag != "" || *ledgerOut != "" {
		rec = obs.New(0)
		obs.SetDefault(rec)
		defer obs.SetDefault(nil)
		cfg.Recorder = rec
	}
	if *ledgerOut != "" {
		sink, err := obs.NewFileSink(*ledgerOut, obs.SinkOptions{
			Format:      sinkFormat,
			RotateBytes: *ledgerRotMB << 20,
		})
		if err != nil {
			fmt.Fprintf(stderr, "quartzbench: -ledger-out: %v\n", err)
			return 2
		}
		if err := rec.AttachSink(sink, 0); err != nil {
			fmt.Fprintf(stderr, "quartzbench: -ledger-out: %v\n", err)
			return 2
		}
		defer func() {
			if err := rec.CloseSink(); err != nil {
				fmt.Fprintf(stderr, "quartzbench: closing ledger sink: %v\n", err)
			}
		}()
	}
	var srv *obshttp.Server
	if *serveFlag != "" {
		board := runner.NewStatusBoard()
		cfg.Status = board
		var err error
		opts := obshttp.Options{Recorder: rec, Status: board, DebugPprof: *servePprof}
		if profSuite != nil {
			opts.VTProf = profSuite.PprofBytes
		}
		srv, err = obshttp.Start(*serveFlag, opts)
		if err != nil {
			fmt.Fprintf(stderr, "quartzbench: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "quartzbench: serving introspection on %s\n", srv.URL())
	}
	if *jsonFlag != "" {
		jf, err := os.Create(*jsonFlag)
		if err != nil {
			fmt.Fprintf(stderr, "quartzbench: %v\n", err)
			return 1
		}
		defer func() {
			if err := jf.Close(); err != nil {
				fmt.Fprintf(stderr, "quartzbench: closing json output: %v\n", err)
			}
		}()
		cfg.Sink = runner.NewSink(jf)
	}
	if *progressFlag {
		// Each progress line carries the recorder's live aggregates: epochs
		// closed so far, the wall-clock epoch-close rate, and how much virtual
		// delay the emulators have injected (with its share of the computed
		// delay — below 100% means overhead amortization withheld some).
		progressStart := time.Now()
		reg := rec.Registry()
		epochs := reg.Counter("quartz.epochs.closed")
		computed := reg.Counter("quartz.delay.computed_ns")
		injected := reg.Counter("quartz.delay.injected_ns")
		cfg.OnProgress = func(p runner.Progress) {
			elapsed := time.Since(progressStart).Seconds()
			if elapsed <= 0 {
				elapsed = 1e-9
			}
			ep := epochs.Value()
			injNs, compNs := injected.Value(), computed.Value()
			injShare := 100.0
			if compNs > 0 {
				injShare = float64(injNs) / float64(compNs) * 100
			}
			fmt.Fprintf(stderr, "[%d/%d] %s %s (%.1fs, %d failed) | %d epochs (%.0f/s), %.1fms delay injected (%.0f%% of computed)\n",
				p.Done, p.Total, p.Last.JobID, p.Last.Status, p.Last.Wall.Seconds(), p.Failed,
				ep, float64(ep)/elapsed, float64(injNs)/1e6, injShare)
		}
	}

	// Ctrl-C cancels the suite: running jobs are abandoned, pending ones are
	// recorded as canceled, and whatever assembled cleanly still renders.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(out, "quartz evaluation suite (scale=%s, trials=%d)\n\n", *scaleFlag, scale.Trials)
	start := time.Now()
	runs, err := runner.Suite(ctx, ids, scale, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "quartzbench: %v\n", err)
		return 1
	}
	exit := 0
	for _, er := range runs {
		if er.Err != nil {
			fmt.Fprintf(stderr, "quartzbench: %s: %v\n", er.ID, er.Err)
			exit = 1
			continue
		}
		fmt.Fprint(out, er.Table.Render())
		fmt.Fprintf(out, "(%s in %.1fs)\n\n", er.ID, er.Wall.Seconds())
	}
	if *progressFlag {
		fmt.Fprintf(stderr, "suite finished in %.1fs\n", time.Since(start).Seconds())
	}

	if rec != nil {
		if err := writeObservability(rec, *traceFlag, *metricsFlag, *metricsOut, stdout); err != nil {
			fmt.Fprintf(stderr, "quartzbench: %v\n", err)
			return 1
		}
	}
	if profSuite != nil {
		if err := writeVTProf(profSuite, *vtprofDir); err != nil {
			fmt.Fprintf(stderr, "quartzbench: -vtprof: %v\n", err)
			return 1
		}
	}
	if srv != nil && *lingerFlag > 0 {
		// Keep the introspection plane queryable after the suite so smoke
		// tests and dashboards can take a final reading; Ctrl-C cuts it.
		fmt.Fprintf(stderr, "quartzbench: introspection server lingering %s (Ctrl-C to stop)\n", *lingerFlag)
		select {
		case <-ctx.Done():
		case <-time.After(*lingerFlag):
		}
	}
	if err := rec.CloseSink(); err != nil {
		fmt.Fprintf(stderr, "quartzbench: ledger sink: %v\n", err)
		return 1
	}
	return exit
}

// validateFlags rejects invalid flag combinations upfront with clear
// errors. It returns the parsed -ledger-format.
func validateFlags(list bool, parallel, trialParallel, retries int, serve string, linger time.Duration,
	ledgerOut, ledgerFormat string, ledgerRotMB int64, servePprof bool) (obs.SinkFormat, error) {
	sinkFormat, err := obs.ParseSinkFormat(ledgerFormat)
	if err != nil {
		return 0, fmt.Errorf("-ledger-format: %v", err)
	}
	switch {
	case parallel < 0:
		return 0, fmt.Errorf("-parallel %d: must be >= 0 (0 = GOMAXPROCS, 1 = serial)", parallel)
	case trialParallel < 0:
		return 0, fmt.Errorf("-trial-parallel %d: must be >= 0 (0 or 1 = serial)", trialParallel)
	case retries < 0:
		return 0, fmt.Errorf("-retries %d: must be >= 0", retries)
	case ledgerRotMB < 0:
		return 0, fmt.Errorf("-ledger-rotate-mb %d: must be >= 0 (0 = never rotate)", ledgerRotMB)
	case linger < 0:
		return 0, fmt.Errorf("-serve-linger %s: must be >= 0", linger)
	case linger > 0 && serve == "":
		return 0, fmt.Errorf("-serve-linger needs -serve")
	case ledgerRotMB > 0 && ledgerOut == "":
		return 0, fmt.Errorf("-ledger-rotate-mb needs -ledger-out")
	case servePprof && serve == "":
		return 0, fmt.Errorf("-serve-pprof needs -serve")
	case list && serve != "":
		return 0, fmt.Errorf("-serve makes no sense with -list (nothing runs)")
	}
	return sinkFormat, nil
}

// applyTrafficOverrides narrows the scale's traffic sweep from the
// -traffic-clients / -traffic-mixes / -traffic-pool / -traffic-lats flags,
// validating every value upfront so a typo fails before any experiment runs.
func applyTrafficOverrides(scale *experiments.Scale, clientsCSV, mixesCSV string, pool int, latsCSV string) error {
	if clientsCSV != "" {
		var clients []int
		for _, s := range strings.Split(clientsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("-traffic-clients: %q is not a positive client count", s)
			}
			clients = append(clients, n)
		}
		scale.TrafficClients = clients
	}
	if mixesCSV != "" {
		var mixes []string
		for _, s := range strings.Split(mixesCSV, ",") {
			name := strings.TrimSpace(s)
			if _, ok := workload.MixByName(name); !ok {
				return fmt.Errorf("-traffic-mixes: unknown mix %q (known: %s)",
					name, strings.Join(workload.PresetNames(), ", "))
			}
			mixes = append(mixes, name)
		}
		scale.TrafficMixes = mixes
	}
	if latsCSV != "" {
		var lats []float64
		for _, s := range strings.Split(latsCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("-traffic-lats: %q is not a positive latency in ns", s)
			}
			lats = append(lats, v)
		}
		scale.TrafficLatsNS = lats
	}
	switch {
	case pool < 0:
		return fmt.Errorf("-traffic-pool %d: must be >= 0 (0 = scale default)", pool)
	case pool > 0:
		scale.TrafficPool = pool
	}
	return nil
}

// profFileName maps a job key ("traffic-sweep/read-mostly/lat=600ns/...")
// to a flat, filesystem-safe file stem.
func profFileName(job string) string {
	var b strings.Builder
	b.Grow(len(job))
	for i := 0; i < len(job); i++ {
		c := job[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_', c == '=':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeVTProf writes the suite's virtual-time profiles into dir: one
// <job>.pb.gz / <job>.folded pair per profiled job, plus suite.pb.gz /
// suite.folded merging every job (the file `go tool pprof` and flame-graph
// tooling consume directly).
func writeVTProf(suite *vtprof.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	write := func(stem string, p *vtprof.Profile) error {
		pb, err := p.PprofBytes()
		if err != nil {
			return err
		}
		if err := os.WriteFile(fmt.Sprintf("%s/%s.pb.gz", dir, stem), pb, 0o666); err != nil {
			return err
		}
		f, err := os.Create(fmt.Sprintf("%s/%s.folded", dir, stem))
		if err != nil {
			return err
		}
		werr := p.WriteFolded(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
	for _, job := range suite.Jobs() {
		if err := write(profFileName(job), suite.JobProfile(job)); err != nil {
			return err
		}
	}
	return write("suite", suite.Merged())
}

// applyAsymOverrides narrows the asymmetric-model sweep from the
// -write-latency / -nvm-profile flags, resolving every profile name against
// the machine registry upfront so a typo fails before any experiment runs.
func applyAsymOverrides(scale *experiments.Scale, writeLatNS float64, profilesCSV string) error {
	if writeLatNS < 0 {
		return fmt.Errorf("-write-latency %g: must be >= 0 ns (0 = profile default)", writeLatNS)
	}
	if writeLatNS > 0 {
		scale.AsymWriteLatNS = writeLatNS
	}
	if profilesCSV != "" {
		var profs []string
		for _, s := range strings.Split(profilesCSV, ",") {
			name := strings.TrimSpace(s)
			if _, err := machine.NVMProfileByName(name); err != nil {
				return fmt.Errorf("-nvm-profile: %v", err)
			}
			profs = append(profs, name)
		}
		scale.AsymProfiles = profs
	}
	return nil
}

// writeObservability exports the recorder's trace file and/or metrics
// snapshot after the suite finishes.
func writeObservability(rec *obs.Recorder, tracePath string, metricsStdout bool, metricsPath string, stdout io.Writer) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		werr := rec.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace: %w", werr)
		}
	}
	if metricsStdout {
		if err := rec.WriteMetricsJSON(stdout); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		werr := rec.WriteMetricsJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing metrics: %w", werr)
		}
	}
	return nil
}
