// Command quartzbench regenerates the paper's evaluation artifacts: every
// table and figure of §4 plus the §3.2 overhead accounting and the design
// ablations, printed as text tables.
//
// Usage:
//
//	quartzbench -list
//	quartzbench -exp fig11,fig12 -scale quick
//	quartzbench -exp all -scale full -o results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/quartz-emu/quartz/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scaleFlag = flag.String("scale", "quick", "sweep scale: quick or full")
		outFlag   = flag.String("o", "", "also write output to this file")
		listFlag  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, id := range experiments.All() {
			fmt.Println(id)
		}
		return 0
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "quartzbench: unknown scale %q (quick|full)\n", *scaleFlag)
		return 2
	}

	ids := experiments.All()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}

	var out io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "quartzbench: closing output: %v\n", err)
			}
		}()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "quartz evaluation suite (scale=%s, trials=%d)\n\n", *scaleFlag, scale.Trials)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		table, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzbench: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprint(out, table.Render())
		fmt.Fprintf(out, "(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	return 0
}
