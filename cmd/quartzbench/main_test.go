package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/experiments"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListPrintsDescriptions(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range experiments.All() {
		desc, err := experiments.Describe(id)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(stdout, id) {
			t.Errorf("-list missing id %q", id)
		}
		if !strings.Contains(stdout, desc) {
			t.Errorf("-list missing description for %q", id)
		}
	}
}

// TestUnknownIDsRejectedUpfront: a typo anywhere in -exp must fail before
// any experiment runs — quickly, and naming every bad id.
func TestUnknownIDsRejectedUpfront(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-exp", "table2,fig99,bogus")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "fig99") || !strings.Contains(stderr, "bogus") {
		t.Errorf("stderr does not name the unknown ids: %q", stderr)
	}
	if strings.Contains(stdout, "== table2") {
		t.Error("experiments ran despite an invalid id")
	}
}

func TestUnknownScaleRejected(t *testing.T) {
	if code, _, _ := runCLI(t, "-scale", "huge"); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestRunWritesTableAndJSONL exercises the full CLI path on the job-less
// table1 artifact (no simulation, so the test stays fast).
func TestRunWritesTableAndJSONL(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "results.jsonl")
	code, stdout, stderr := runCLI(t, "-exp", "table1", "-parallel", "4", "-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "== table1:") {
		t.Errorf("missing table1 render:\n%s", stdout)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Errorf("JSONL file not created: %v", err)
	}
}
