package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/experiments"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListPrintsDescriptions(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range experiments.All() {
		desc, err := experiments.Describe(id)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(stdout, id) {
			t.Errorf("-list missing id %q", id)
		}
		if !strings.Contains(stdout, desc) {
			t.Errorf("-list missing description for %q", id)
		}
	}
}

// TestUnknownIDsRejectedUpfront: a typo anywhere in -exp must fail before
// any experiment runs — quickly, and naming every bad id.
func TestUnknownIDsRejectedUpfront(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-exp", "table2,fig99,bogus")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "fig99") || !strings.Contains(stderr, "bogus") {
		t.Errorf("stderr does not name the unknown ids: %q", stderr)
	}
	if strings.Contains(stdout, "== table2") {
		t.Error("experiments ran despite an invalid id")
	}
}

func TestUnknownScaleRejected(t *testing.T) {
	if code, _, _ := runCLI(t, "-scale", "huge"); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestTrafficFlagValidation: bad -traffic-clients / -traffic-mixes values
// must fail upfront (exit 2) before any experiment runs, and the mix error
// must name the known presets.
func TestTrafficFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-exp", "traffic-sweep", "-traffic-clients", "8,zero"},
		{"-exp", "traffic-sweep", "-traffic-clients", "0"},
		{"-exp", "traffic-sweep", "-traffic-clients", "-4"},
		{"-exp", "traffic-sweep", "-traffic-mixes", "read-heavy"},
		{"-exp", "traffic-sweep", "-traffic-pool", "-2"},
		{"-exp", "traffic-sweep", "-traffic-lats", "600,zero"},
		{"-exp", "traffic-sweep", "-traffic-lats", "0"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("%v: exit = %d, want 2", args, code)
		}
	}
	_, _, stderr := runCLI(t, "-exp", "traffic-sweep", "-traffic-mixes", "nope")
	if !strings.Contains(stderr, "read-mostly") {
		t.Errorf("mix error does not name known presets: %q", stderr)
	}
}

// TestTrafficOverrides applies the traffic flags to the scale.
func TestTrafficOverrides(t *testing.T) {
	s := experiments.Quick
	if err := applyTrafficOverrides(&s, "8, 24", "scan-blend", 9, "200, 600"); err != nil {
		t.Fatal(err)
	}
	if len(s.TrafficClients) != 2 || s.TrafficClients[0] != 8 || s.TrafficClients[1] != 24 {
		t.Errorf("TrafficClients = %v", s.TrafficClients)
	}
	if len(s.TrafficMixes) != 1 || s.TrafficMixes[0] != "scan-blend" {
		t.Errorf("TrafficMixes = %v", s.TrafficMixes)
	}
	if s.TrafficPool != 9 {
		t.Errorf("TrafficPool = %d, want 9", s.TrafficPool)
	}
	if len(s.TrafficLatsNS) != 2 || s.TrafficLatsNS[0] != 200 || s.TrafficLatsNS[1] != 600 {
		t.Errorf("TrafficLatsNS = %v", s.TrafficLatsNS)
	}
	// Empty flags leave the scale untouched.
	s2 := experiments.Quick
	if err := applyTrafficOverrides(&s2, "", "", 0, ""); err != nil {
		t.Fatal(err)
	}
	if len(s2.TrafficClients) != len(experiments.Quick.TrafficClients) {
		t.Errorf("empty override changed TrafficClients: %v", s2.TrafficClients)
	}
	if s2.TrafficPool != experiments.Quick.TrafficPool {
		t.Errorf("pool 0 changed TrafficPool: %d", s2.TrafficPool)
	}
	if len(s2.TrafficLatsNS) != len(experiments.Quick.TrafficLatsNS) {
		t.Errorf("empty override changed TrafficLatsNS: %v", s2.TrafficLatsNS)
	}
	if err := applyTrafficOverrides(&s2, "", "", -1, ""); err == nil {
		t.Error("negative -traffic-pool accepted")
	}
	if err := applyTrafficOverrides(&s2, "", "", 0, "600,zero"); err == nil {
		t.Error("non-numeric -traffic-lats accepted")
	}
	if err := applyTrafficOverrides(&s2, "", "", 0, "-200"); err == nil {
		t.Error("negative -traffic-lats accepted")
	}
}

// TestServePprofNeedsServe: -serve-pprof only makes sense with a live
// introspection server; asking for it without -serve must fail upfront.
func TestServePprofNeedsServe(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "table1", "-serve-pprof")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-serve-pprof") || !strings.Contains(stderr, "-serve") {
		t.Errorf("stderr does not explain the -serve-pprof/-serve dependency: %q", stderr)
	}
}

// TestVTProfWritesProfiles: -vtprof on a real (tiny) traffic job must write a
// per-job profile and the merged suite profile, both non-empty gzipped pprof
// files, plus the folded-stacks sidecars.
func TestVTProfWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "-exp", "traffic-sweep", "-scale", "quick",
		"-traffic-clients", "8", "-traffic-mixes", "read-mostly", "-traffic-lats", "600",
		"-vtprof", dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	suite := filepath.Join(dir, "suite.pb.gz")
	b, err := os.ReadFile(suite)
	if err != nil {
		t.Fatalf("merged suite profile missing: %v", err)
	}
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Errorf("suite.pb.gz is not gzip (starts %x)", b[:min(4, len(b))])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var pb, folded int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".pb.gz"):
			pb++
		case strings.HasSuffix(e.Name(), ".folded"):
			folded++
		}
	}
	if pb < 2 { // at least one per-job profile plus the suite merge
		t.Errorf("want >= 2 .pb.gz files (job + suite), got %d: %v", pb, entries)
	}
	if folded != pb {
		t.Errorf("every .pb.gz needs a .folded sidecar: %d vs %d", pb, folded)
	}
}

// TestRunWritesTableAndJSONL exercises the full CLI path on the job-less
// table1 artifact (no simulation, so the test stays fast).
func TestRunWritesTableAndJSONL(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "results.jsonl")
	code, stdout, stderr := runCLI(t, "-exp", "table1", "-parallel", "4", "-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "== table1:") {
		t.Errorf("missing table1 render:\n%s", stdout)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Errorf("JSONL file not created: %v", err)
	}
}

// TestTraceAndMetricsExports runs a small real experiment with -trace and
// -metrics-out and cross-checks the two artifacts: the trace must be a
// loadable Chrome trace-event file whose epoch slices account for every
// retained ledger record, and the metrics snapshot must agree with it.
func TestTraceAndMetricsExports(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	code, stdout, stderr := runCLI(t, "-exp", "overhead", "-trace", tracePath, "-metrics-out", metricsPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "== overhead") {
		t.Errorf("experiment table missing:\n%s", stdout)
	}

	traceRaw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
		OtherData struct {
			Retained int64 `json:"epochs_retained"`
			Dropped  int64 `json:"epochs_dropped"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(traceRaw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var epochSlices int64
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "epoch" {
			epochSlices++
		}
	}
	if epochSlices == 0 {
		t.Fatal("trace contains no epoch slices")
	}
	if epochSlices != tr.OtherData.Retained {
		t.Errorf("trace has %d epoch slices but reports %d retained", epochSlices, tr.OtherData.Retained)
	}

	metricsRaw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.Unmarshal(metricsRaw, &metrics); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	closed, ok := metrics["quartz.epochs.closed"].(float64)
	if !ok {
		t.Fatalf("metrics missing quartz.epochs.closed: %v", metrics)
	}
	if int64(closed) != tr.OtherData.Retained+tr.OtherData.Dropped {
		t.Errorf("epochs.closed = %d, trace retained+dropped = %d",
			int64(closed), tr.OtherData.Retained+tr.OtherData.Dropped)
	}
	if jobsOK, ok := metrics["runner.jobs.ok"].(float64); !ok || jobsOK == 0 {
		t.Errorf("runner.jobs.ok missing or zero: %v", metrics["runner.jobs.ok"])
	}
}

// TestNoObservabilityFlagsWritesNothing: without -trace/-metrics the global
// recorder stays uninstalled and no observability output appears.
func TestNoObservabilityFlagsWritesNothing(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-exp", "table1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if strings.Contains(stdout, "traceEvents") || strings.Contains(stdout, "quartz.epochs.closed") {
		t.Errorf("observability output leaked without flags:\n%s", stdout)
	}
}

// TestAsymFlagValidation: bad -write-latency / -nvm-profile values must fail
// upfront (exit 2) before any experiment runs, and the profile error must
// name the known profiles.
func TestAsymFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-exp", "fig12-asym", "-write-latency", "-5"},
		{"-exp", "fig12-asym", "-nvm-profile", "xpoint"},
		{"-exp", "fig11-asym", "-nvm-profile", "optane-dcpmm,bogus"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("%v: exit = %d, want 2", args, code)
		}
	}
	_, _, stderr := runCLI(t, "-exp", "fig12-asym", "-nvm-profile", "nope")
	if !strings.Contains(stderr, "optane-dcpmm") || !strings.Contains(stderr, "pcm") {
		t.Errorf("profile error does not name known profiles: %q", stderr)
	}
}

// TestAsymOverrides applies the asymmetric-model flags to the scale.
func TestAsymOverrides(t *testing.T) {
	s := experiments.Quick
	if err := applyAsymOverrides(&s, 680, "pcm, optane-dcpmm"); err != nil {
		t.Fatal(err)
	}
	if s.AsymWriteLatNS != 680 {
		t.Errorf("AsymWriteLatNS = %g, want 680", s.AsymWriteLatNS)
	}
	if len(s.AsymProfiles) != 2 || s.AsymProfiles[0] != "pcm" || s.AsymProfiles[1] != "optane-dcpmm" {
		t.Errorf("AsymProfiles = %v", s.AsymProfiles)
	}
	// Empty flags leave the scale untouched.
	s2 := experiments.Quick
	if err := applyAsymOverrides(&s2, 0, ""); err != nil {
		t.Fatal(err)
	}
	if s2.AsymWriteLatNS != 0 || len(s2.AsymProfiles) != len(experiments.Quick.AsymProfiles) {
		t.Errorf("empty override changed the scale: lat=%g profiles=%v", s2.AsymWriteLatNS, s2.AsymProfiles)
	}
	if err := applyAsymOverrides(&s2, -1, ""); err == nil {
		t.Error("negative -write-latency accepted")
	}
	if err := applyAsymOverrides(&s2, 0, "optane-dcpmm,"); err == nil {
		t.Error("empty profile name accepted")
	}
}
