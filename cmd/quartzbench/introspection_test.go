package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/quartz-emu/quartz/internal/obs"
)

// TestObsFlagValidationUpfront: bad flag combinations must exit 2 before
// any experiment runs, each with an error naming the offending flag.
func TestObsFlagValidationUpfront(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"bad format", []string{"-exp", "table1", "-ledger-out", "x", "-ledger-format", "csv"}, "-ledger-format"},
		{"negative parallel", []string{"-exp", "table1", "-parallel", "-1"}, "-parallel"},
		{"negative retries", []string{"-exp", "table1", "-retries", "-2"}, "-retries"},
		{"negative rotate", []string{"-exp", "table1", "-ledger-out", "x", "-ledger-rotate-mb", "-5"}, "-ledger-rotate-mb"},
		{"rotate without out", []string{"-exp", "table1", "-ledger-rotate-mb", "4"}, "-ledger-rotate-mb needs -ledger-out"},
		{"linger without serve", []string{"-exp", "table1", "-serve-linger", "5s"}, "-serve-linger needs -serve"},
		{"negative linger", []string{"-exp", "table1", "-serve", ":0", "-serve-linger", "-1s"}, "-serve-linger"},
		{"serve with list", []string{"-list", "-serve", ":0"}, "-serve"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, c.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, c.want) {
				t.Errorf("stderr %q does not mention %q", stderr, c.want)
			}
			if strings.Contains(stdout, "== ") {
				t.Error("experiments ran despite invalid flags")
			}
		})
	}
}

// TestLedgerSinkUnwritablePathRejected: a sink that cannot be opened is a
// usage error before the suite starts.
func TestLedgerSinkUnwritablePathRejected(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "ledger.jsonl")
	code, _, stderr := runCLI(t, "-exp", "table1", "-ledger-out", bad)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "ledger") {
		t.Errorf("stderr does not mention the ledger sink: %q", stderr)
	}
}

// TestLedgerStreamingReconciles is the acceptance check: with a sink
// attached, a quick suite streams EVERY epoch record to disk — the decoded
// count equals the quartz.epochs.closed counter, sequence numbers are dense,
// and nothing is reported dropped.
func TestLedgerStreamingReconciles(t *testing.T) {
	for _, format := range []string{"jsonl", "binary"} {
		t.Run(format, func(t *testing.T) {
			dir := t.TempDir()
			ledgerPath := filepath.Join(dir, "ledger."+format)
			metricsPath := filepath.Join(dir, "metrics.json")
			code, _, stderr := runCLI(t, "-exp", "overhead",
				"-ledger-out", ledgerPath, "-ledger-format", format,
				"-metrics-out", metricsPath)
			if code != 0 {
				t.Fatalf("exit = %d, stderr: %s", code, stderr)
			}
			if strings.Contains(stderr, "dropped") {
				t.Errorf("drop warning with a sink attached: %q", stderr)
			}

			recs, err := obs.ReadLedger(ledgerPath)
			if err != nil {
				t.Fatalf("ReadLedger: %v", err)
			}
			if len(recs) == 0 {
				t.Fatal("ledger stream is empty")
			}
			for i, rec := range recs {
				if rec.Seq != uint64(i) {
					t.Fatalf("record %d has seq %d: stream has gaps", i, rec.Seq)
				}
			}

			metricsRaw, err := os.ReadFile(metricsPath)
			if err != nil {
				t.Fatal(err)
			}
			var metrics map[string]any
			if err := json.Unmarshal(metricsRaw, &metrics); err != nil {
				t.Fatal(err)
			}
			closed, _ := metrics["quartz.epochs.closed"].(float64)
			if int64(closed) != int64(len(recs)) {
				t.Errorf("ledger has %d records but quartz.epochs.closed = %d",
					len(recs), int64(closed))
			}
			if dropped, _ := metrics["obs.ledger.dropped"].(float64); dropped != 0 {
				t.Errorf("obs.ledger.dropped = %v with a sink attached, want 0", dropped)
			}
			if total, _ := metrics["obs.ledger.total"].(float64); int64(total) != int64(len(recs)) {
				t.Errorf("obs.ledger.total = %v, ledger has %d", total, len(recs))
			}
		})
	}
}

// TestServeStartsAndStops: -serve on an ephemeral port must bring the
// introspection server up (announced on stderr) and exit cleanly with the
// run.
func TestServeStartsAndStops(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "table1", "-serve", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "serving introspection on") {
		t.Errorf("server address not announced on stderr: %q", stderr)
	}
	if !strings.Contains(stderr, "http://127.0.0.1:") {
		t.Errorf("announcement has no dialable URL: %q", stderr)
	}
}
