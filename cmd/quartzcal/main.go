// Command quartzcal is the bandwidth-calibration helper of §3.1: for each
// thermal-control register value it measures the maximum attainable memory
// bandwidth by streaming through a large region with several SSE-style
// streaming threads, and prints the table the user-mode library later uses
// to map a target NVM bandwidth to a register value.
//
// Usage:
//
//	quartzcal -preset sandybridge -points 16
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/kmod"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/mem"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		presetFlag = flag.String("preset", "sandybridge", "sandybridge|ivybridge|haswell")
		points     = flag.Int("points", 16, "number of register values to calibrate")
		lines      = flag.Int("lines", 1<<16, "stream length in cache lines")
		threads    = flag.Int("threads", 4, "streaming threads")
	)
	flag.Parse()

	var preset machine.Preset
	switch *presetFlag {
	case "sandybridge":
		preset = machine.XeonE5_2450
	case "ivybridge":
		preset = machine.XeonE5_2660v2
	case "haswell":
		preset = machine.XeonE5_2650v3
	default:
		fmt.Fprintf(os.Stderr, "quartzcal: unknown preset %q\n", *presetFlag)
		return 2
	}

	table, err := calibrate(preset, *points, *lines, *threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quartzcal: %v\n", err)
		return 1
	}
	fmt.Printf("# bandwidth calibration for %v\n", preset)
	fmt.Printf("# register  bytes/sec\n")
	for _, p := range table {
		fmt.Printf("%6d  %.4g\n", p.Register, p.Bandwidth)
	}
	for _, target := range []float64{1e9, 5e9, 10e9, 20e9} {
		reg, err := table.RegisterFor(target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quartzcal: %v\n", err)
			return 1
		}
		fmt.Printf("# target %.3g B/s -> register %d\n", target, reg)
	}
	return 0
}

// calibrate measures attainable bandwidth per register value, each on a
// fresh machine (cold caches), exactly as the paper's helper program does.
func calibrate(preset machine.Preset, points, lines, threads int) (kmod.CalibrationTable, error) {
	if points < 2 {
		points = 2
	}
	var table kmod.CalibrationTable
	step := (mem.RegisterMax + 1) / points
	for reg := step; reg <= mem.RegisterMax+1; reg += step {
		r := uint16(min(reg, mem.RegisterMax))
		env, err := bench.NewEnv(bench.EnvConfig{
			Preset: preset, Mode: bench.Native, Lookahead: 5 * sim.Microsecond,
		})
		if err != nil {
			return nil, err
		}
		km, err := kmod.Open(env.Mach)
		if err != nil {
			return nil, err
		}
		if err := km.SetThrottleAll(r); err != nil {
			return nil, err
		}
		var res bench.StreamResult
		err = env.Run(func(e *bench.Env, th *simos.Thread) {
			var rerr error
			res, rerr = bench.RunStream(e, th, bench.StreamConfig{
				Lines: lines, Threads: threads, Node: 0,
			})
			if rerr != nil {
				th.Failf("%v", rerr)
			}
		})
		if err != nil {
			return nil, err
		}
		table = append(table, kmod.CalPoint{Register: r, Bandwidth: res.BytesPerSec})
	}
	return table, nil
}
