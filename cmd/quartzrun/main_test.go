package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
)

func TestParsePreset(t *testing.T) {
	tests := []struct {
		in      string
		want    machine.Preset
		wantErr bool
	}{
		{"sandybridge", machine.XeonE5_2450, false},
		{"ivybridge", machine.XeonE5_2660v2, false},
		{"haswell", machine.XeonE5_2650v3, false},
		{"skylake", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := parsePreset(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("parsePreset(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestParseMode(t *testing.T) {
	tests := []struct {
		in      string
		want    bench.Mode
		wantErr bool
	}{
		{"native", bench.Native, false},
		{"physical-remote", bench.PhysicalRemote, false},
		{"emulated", bench.Emulated, false},
		{"hardware", 0, true},
	}
	for _, tt := range tests {
		got, err := parseMode(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("parseMode(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestExecuteRejectsBadFlags(t *testing.T) {
	base := flags{
		workload: "memlat", preset: "ivybridge", mode: "emulated",
		nvmLatNS: 300, threads: 1, iters: 100, lines: 1 << 14,
		minEpoch: 0.1, maxEpoch: 1, modelStr: "stall",
	}
	bad := base
	bad.preset = "pentium"
	if err := execute(bad); err == nil {
		t.Error("bad preset accepted")
	}
	bad = base
	bad.mode = "quantum"
	if err := execute(bad); err == nil {
		t.Error("bad mode accepted")
	}
	bad = base
	bad.modelStr = "guess"
	if err := execute(bad); err == nil {
		t.Error("bad model accepted")
	}
	bad = base
	bad.workload = "mystery"
	if err := execute(bad); err == nil {
		t.Error("bad workload accepted")
	}
	bad = base
	bad.workload = "multilat" // requires -two-memory
	if err := execute(bad); err == nil {
		t.Error("multilat without two-memory accepted")
	}
}

func TestExecuteRunsSmallMemLat(t *testing.T) {
	f := flags{
		workload: "memlat", preset: "ivybridge", mode: "emulated",
		nvmLatNS: 300, threads: 1, iters: 2_000, lines: 1 << 15,
		minEpoch: 0.05, maxEpoch: 0.5, modelStr: "stall",
	}
	if err := execute(f); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

func TestValidateObsFlags(t *testing.T) {
	base := flags{ledgerFmt: "jsonl"}
	if _, err := validateObsFlags(base); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*flags)
		want   string
	}{
		{"bad format", func(f *flags) { f.ledgerFmt = "xml" }, "-ledger-format"},
		{"negative rotate", func(f *flags) { f.ledgerOut = "x"; f.ledgerRotMB = -1 }, "-ledger-rotate-mb"},
		{"rotate without out", func(f *flags) { f.ledgerRotMB = 4 }, "-ledger-rotate-mb needs -ledger-out"},
		{"linger without serve", func(f *flags) { f.serveLinger = time.Second }, "-serve-linger needs -serve"},
		{"negative linger", func(f *flags) { f.serve = ":0"; f.serveLinger = -time.Second }, "-serve-linger"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := base
			c.mutate(&f)
			_, err := validateObsFlags(f)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestExecuteStreamsLedger: a small run with -ledger-out must stream a
// dense, decodable epoch ledger.
func TestExecuteStreamsLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.bin")
	f := flags{
		workload: "memlat", preset: "ivybridge", mode: "emulated",
		nvmLatNS: 300, threads: 1, iters: 2_000, lines: 1 << 15,
		minEpoch: 0.05, maxEpoch: 0.5, modelStr: "stall",
		ledgerOut: path, ledgerFmt: "binary",
	}
	if err := execute(f); err != nil {
		t.Fatalf("execute: %v", err)
	}
	recs, err := obs.ReadLedger(path)
	if err != nil {
		t.Fatalf("ReadLedger: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("ledger stream is empty")
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
}

// TestValidateAsymFlags: the asymmetric-model flags are validated upfront
// (run() exits 2), and the profile error must name the known profiles so a
// typo fails helpfully.
func TestValidateAsymFlags(t *testing.T) {
	if err := validateAsymFlags(flags{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := validateAsymFlags(flags{nvmWriteNS: 680, nvmProfile: "optane-dcpmm"}); err != nil {
		t.Fatalf("valid asym flags rejected: %v", err)
	}
	if err := validateAsymFlags(flags{nvmWriteNS: -1}); err == nil {
		t.Error("negative -nvm-write accepted")
	}
	err := validateAsymFlags(flags{nvmProfile: "xpoint"})
	if err == nil {
		t.Fatal("unknown -nvm-profile accepted")
	}
	for _, name := range machine.NVMProfileNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("profile error %q does not name %q", err, name)
		}
	}
}

// TestExecuteAsymProfileRun: a small run under a calibrated NVM profile must
// succeed end to end — the profile's store latency, bandwidth caps and
// access granularity all flow into the environment, and -nvm-write narrows
// the store latency on top.
func TestExecuteAsymProfileRun(t *testing.T) {
	f := flags{
		workload: "memlat", preset: "ivybridge", mode: "emulated",
		nvmLatNS: 300, threads: 1, iters: 2_000, lines: 1 << 15,
		minEpoch: 0.05, maxEpoch: 0.5, modelStr: "stall",
		nvmProfile: "pcm", nvmWriteNS: 900,
	}
	if err := execute(f); err != nil {
		t.Fatalf("execute under -nvm-profile pcm: %v", err)
	}
}
