package main

import (
	"testing"

	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/machine"
)

func TestParsePreset(t *testing.T) {
	tests := []struct {
		in      string
		want    machine.Preset
		wantErr bool
	}{
		{"sandybridge", machine.XeonE5_2450, false},
		{"ivybridge", machine.XeonE5_2660v2, false},
		{"haswell", machine.XeonE5_2650v3, false},
		{"skylake", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := parsePreset(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("parsePreset(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestParseMode(t *testing.T) {
	tests := []struct {
		in      string
		want    bench.Mode
		wantErr bool
	}{
		{"native", bench.Native, false},
		{"physical-remote", bench.PhysicalRemote, false},
		{"emulated", bench.Emulated, false},
		{"hardware", 0, true},
	}
	for _, tt := range tests {
		got, err := parseMode(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("parseMode(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestExecuteRejectsBadFlags(t *testing.T) {
	base := flags{
		workload: "memlat", preset: "ivybridge", mode: "emulated",
		nvmLatNS: 300, threads: 1, iters: 100, lines: 1 << 14,
		minEpoch: 0.1, maxEpoch: 1, modelStr: "stall",
	}
	bad := base
	bad.preset = "pentium"
	if err := execute(bad); err == nil {
		t.Error("bad preset accepted")
	}
	bad = base
	bad.mode = "quantum"
	if err := execute(bad); err == nil {
		t.Error("bad mode accepted")
	}
	bad = base
	bad.modelStr = "guess"
	if err := execute(bad); err == nil {
		t.Error("bad model accepted")
	}
	bad = base
	bad.workload = "mystery"
	if err := execute(bad); err == nil {
		t.Error("bad workload accepted")
	}
	bad = base
	bad.workload = "multilat" // requires -two-memory
	if err := execute(bad); err == nil {
		t.Error("multilat without two-memory accepted")
	}
}

func TestExecuteRunsSmallMemLat(t *testing.T) {
	f := flags{
		workload: "memlat", preset: "ivybridge", mode: "emulated",
		nvmLatNS: 300, threads: 1, iters: 2_000, lines: 1 << 15,
		minEpoch: 0.05, maxEpoch: 0.5, modelStr: "stall",
	}
	if err := execute(f); err != nil {
		t.Fatalf("execute: %v", err)
	}
}
