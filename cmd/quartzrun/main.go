// Command quartzrun executes one workload under configurable Quartz
// emulation and prints its measurements plus the emulator's §3.2 statistics
// feedback — the moral equivalent of the real project's
// `LD_PRELOAD=libnvmemul.so ./app` with an nvmemul.ini.
//
// Usage:
//
//	quartzrun -workload memlat -nvm-lat 500
//	quartzrun -workload kvstore -threads 4 -nvm-lat 300 -nvm-bw 2e9
//	quartzrun -workload pagerank -mode physical-remote
//	quartzrun -workload multilat -two-memory -nvm-lat 400
//	quartzrun -workload multithreaded -threads 4 -trace trace.json -metrics
//	quartzrun -workload kvstore -iters 2000000 -serve :8077 -ledger-out run.jsonl
//
// -trace writes a Chrome trace-event file of the run (epochs as slices,
// delay injections as flow-linked slices; open in chrome://tracing or
// Perfetto); -metrics / -metrics-out export the aggregated metrics registry
// as JSON. See doc/observability.md.
//
// -serve starts the live introspection HTTP server (/metrics, /ledger,
// /events) for the duration of the run (plus -serve-linger); -ledger-out
// streams every epoch record to disk as it closes (-ledger-format jsonl or
// binary). See doc/live-monitoring.md.
//
// -vtprof DIR writes the run's virtual-time profile — every simulated
// nanosecond attributed to (thread, phase, category) — as pprof protobuf
// (run.pb.gz) plus folded stacks (run.folded); with -serve it is also live
// at GET /vtprof. -serve-pprof additionally mounts host-side net/http/pprof
// under /debug/pprof/. See doc/profiling.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/quartz-emu/quartz/internal/apps/graph500"
	"github.com/quartz-emu/quartz/internal/apps/kvstore"
	"github.com/quartz-emu/quartz/internal/apps/pagerank"
	"github.com/quartz-emu/quartz/internal/bench"
	"github.com/quartz-emu/quartz/internal/core"
	"github.com/quartz-emu/quartz/internal/machine"
	"github.com/quartz-emu/quartz/internal/obs"
	"github.com/quartz-emu/quartz/internal/obs/obshttp"
	"github.com/quartz-emu/quartz/internal/obs/vtprof"
	"github.com/quartz-emu/quartz/internal/sim"
	"github.com/quartz-emu/quartz/internal/simos"
)

func main() {
	os.Exit(run())
}

type flags struct {
	workload    string
	preset      string
	mode        string
	nvmLatNS    float64
	nvmBW       float64
	writeNS     float64
	nvmWriteNS  float64
	nvmProfile  string
	threads     int
	iters       int
	lines       int
	minEpoch    float64 // ms
	maxEpoch    float64 // ms
	twoMemory   bool
	injectOff   bool
	modelStr    string
	seed        int64
	configPath  string
	tracePath   string
	metrics     bool
	metricsOut  string
	serve       string
	serveLinger time.Duration
	ledgerOut   string
	ledgerFmt   string
	ledgerRotMB int64
	vtprofDir   string
	servePprof  bool
}

func run() int {
	var f flags
	flag.StringVar(&f.workload, "workload", "memlat", "memlat|stream|multithreaded|multilat|kvstore|pagerank|bfs")
	flag.StringVar(&f.preset, "preset", "ivybridge", "sandybridge|ivybridge|haswell")
	flag.StringVar(&f.mode, "mode", "emulated", "native|physical-remote|emulated")
	flag.Float64Var(&f.nvmLatNS, "nvm-lat", 500, "target NVM latency (ns)")
	flag.Float64Var(&f.nvmBW, "nvm-bw", 0, "NVM bandwidth cap (bytes/s, 0 = unthrottled)")
	flag.Float64Var(&f.writeNS, "write-lat", 0, "pflush write delay (ns, 0 = NVM-DRAM gap)")
	flag.Float64Var(&f.nvmWriteNS, "nvm-write", 0, "target NVM store latency (ns) for the asymmetric store model (0 = symmetric)")
	flag.StringVar(&f.nvmProfile, "nvm-profile", "", "calibrated NVM profile (e.g. optane-dcpmm, pcm): sets read/write latency, bandwidth and access granularity")
	flag.IntVar(&f.threads, "threads", 1, "worker threads")
	flag.IntVar(&f.iters, "iters", 100_000, "iterations / operations")
	flag.IntVar(&f.lines, "lines", 1<<20, "working-set cache lines")
	flag.Float64Var(&f.minEpoch, "min-epoch", 0.1, "minimum epoch (ms)")
	flag.Float64Var(&f.maxEpoch, "max-epoch", 10, "maximum epoch (ms)")
	flag.BoolVar(&f.twoMemory, "two-memory", false, "DRAM+NVM virtual topology (§3.3)")
	flag.BoolVar(&f.injectOff, "switch-off-injection", false, "compute but do not inject delays (§3.2)")
	flag.StringVar(&f.modelStr, "model", "stall", "latency model: stall (Eq.2) | simple (Eq.1)")
	flag.Int64Var(&f.seed, "seed", 42, "workload seed")
	flag.StringVar(&f.configPath, "config", "", "nvmemul.ini-style config file (overrides latency/bandwidth/epoch/model flags)")
	flag.StringVar(&f.tracePath, "trace", "", "write a Chrome trace-event file of the run (open in chrome://tracing or Perfetto)")
	flag.BoolVar(&f.metrics, "metrics", false, "print a JSON metrics snapshot after the run")
	flag.StringVar(&f.metricsOut, "metrics-out", "", "write the JSON metrics snapshot to this file")
	flag.StringVar(&f.serve, "serve", "", "serve live introspection HTTP (/metrics /ledger /events) on this address during the run (e.g. :8077)")
	flag.DurationVar(&f.serveLinger, "serve-linger", 0, "keep the introspection server up this long after the run finishes")
	flag.StringVar(&f.ledgerOut, "ledger-out", "", "stream every epoch record to this file as it closes")
	flag.StringVar(&f.ledgerFmt, "ledger-format", "jsonl", "ledger sink encoding: jsonl or binary")
	flag.Int64Var(&f.ledgerRotMB, "ledger-rotate-mb", 0, "rotate the ledger sink file after this many MiB (0 = never)")
	flag.StringVar(&f.vtprofDir, "vtprof", "", "write the run's virtual-time profile (pprof .pb.gz + .folded) into this directory")
	flag.BoolVar(&f.servePprof, "serve-pprof", false, "mount host-side net/http/pprof under /debug/pprof/ on the -serve server")
	flag.Parse()

	// Asymmetric-model flags are validated upfront like flag-parse errors
	// (exit 2): a typo'd profile name or negative latency must fail in
	// milliseconds, before any environment is built.
	if err := validateAsymFlags(f); err != nil {
		fmt.Fprintf(os.Stderr, "quartzrun: %v\n", err)
		return 2
	}

	if err := execute(f); err != nil {
		fmt.Fprintf(os.Stderr, "quartzrun: %v\n", err)
		return 1
	}
	return 0
}

// validateAsymFlags rejects invalid -nvm-write / -nvm-profile values before
// anything runs; the profile error names the known profiles.
func validateAsymFlags(f flags) error {
	if f.nvmWriteNS < 0 {
		return fmt.Errorf("-nvm-write %g: must be >= 0 ns (0 = symmetric model)", f.nvmWriteNS)
	}
	if f.nvmProfile != "" {
		if _, err := machine.NVMProfileByName(f.nvmProfile); err != nil {
			return fmt.Errorf("-nvm-profile: %w", err)
		}
	}
	return nil
}

func parsePreset(s string) (machine.Preset, error) {
	switch s {
	case "sandybridge":
		return machine.XeonE5_2450, nil
	case "ivybridge":
		return machine.XeonE5_2660v2, nil
	case "haswell":
		return machine.XeonE5_2650v3, nil
	default:
		return 0, fmt.Errorf("unknown preset %q", s)
	}
}

func parseMode(s string) (bench.Mode, error) {
	switch s {
	case "native":
		return bench.Native, nil
	case "physical-remote":
		return bench.PhysicalRemote, nil
	case "emulated":
		return bench.Emulated, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// validateObsFlags rejects invalid introspection flag combinations upfront,
// before the environment is built, and returns the parsed -ledger-format.
func validateObsFlags(f flags) (obs.SinkFormat, error) {
	sinkFormat := obs.FormatJSONL
	if f.ledgerFmt != "" {
		var err error
		if sinkFormat, err = obs.ParseSinkFormat(f.ledgerFmt); err != nil {
			return 0, fmt.Errorf("-ledger-format: %v", err)
		}
	}
	switch {
	case f.ledgerRotMB < 0:
		return 0, fmt.Errorf("-ledger-rotate-mb %d: must be >= 0 (0 = never rotate)", f.ledgerRotMB)
	case f.ledgerRotMB > 0 && f.ledgerOut == "":
		return 0, fmt.Errorf("-ledger-rotate-mb needs -ledger-out")
	case f.serveLinger < 0:
		return 0, fmt.Errorf("-serve-linger %s: must be >= 0", f.serveLinger)
	case f.serveLinger > 0 && f.serve == "":
		return 0, fmt.Errorf("-serve-linger needs -serve")
	case f.servePprof && f.serve == "":
		return 0, fmt.Errorf("-serve-pprof needs -serve")
	}
	return sinkFormat, nil
}

func execute(f flags) error {
	preset, err := parsePreset(f.preset)
	if err != nil {
		return err
	}
	mode, err := parseMode(f.mode)
	if err != nil {
		return err
	}
	sinkFormat, err := validateObsFlags(f)
	if err != nil {
		return err
	}
	model := core.ModelStall
	if f.modelStr == "simple" {
		model = core.ModelSimple
	} else if f.modelStr != "stall" {
		return fmt.Errorf("unknown model %q", f.modelStr)
	}

	q := core.Config{
		NVMLatency:   sim.FromNanos(f.nvmLatNS),
		NVMBandwidth: f.nvmBW,
		WriteLatency: sim.FromNanos(f.writeNS),
		MinEpoch:     sim.Time(f.minEpoch * float64(sim.Millisecond)),
		MaxEpoch:     sim.Time(f.maxEpoch * float64(sim.Millisecond)),
		Model:        model,
		TwoMemory:    f.twoMemory,
		InjectionOff: f.injectOff,
	}
	if f.configPath != "" {
		q, err = core.LoadINIFile(f.configPath)
		if err != nil {
			return err
		}
	}

	// Asymmetric store model: a profile overlays calibrated read/write
	// latencies, bandwidth caps, the write-collapse curve and the device
	// access granularity; -nvm-write then overrides the store latency alone.
	// Both apply after -config so a loaded ini can be narrowed per run.
	var mc *machine.Config
	if f.nvmProfile != "" {
		prof, _ := machine.NVMProfileByName(f.nvmProfile) // validated upfront
		q.NVMLatency = prof.ReadLatency
		q.NVMWriteLatency = prof.WriteLatency
		q.NVMBandwidth = prof.ReadBandwidth
		q.NVMWriteBandwidth = prof.WriteBandwidth
		q.WriteBandwidthByThreads = prof.WriteBandwidthByThreads
		c := machine.PresetConfig(preset)
		prof.ApplyToMem(&c)
		mc = &c
	}
	if f.nvmWriteNS > 0 {
		q.NVMWriteLatency = sim.FromNanos(f.nvmWriteNS)
	}

	// Observability: the recorder is installed as the process-global
	// default so the emulator bench.NewEnv attaches picks it up.
	var rec *obs.Recorder
	if f.tracePath != "" || f.metrics || f.metricsOut != "" || f.serve != "" || f.ledgerOut != "" {
		rec = obs.New(0)
		obs.SetDefault(rec)
		defer obs.SetDefault(nil)
	}
	if f.ledgerOut != "" {
		sink, err := obs.NewFileSink(f.ledgerOut, obs.SinkOptions{
			Format:      sinkFormat,
			RotateBytes: f.ledgerRotMB << 20,
		})
		if err != nil {
			return fmt.Errorf("-ledger-out: %w", err)
		}
		if err := rec.AttachSink(sink, 0); err != nil {
			return fmt.Errorf("-ledger-out: %w", err)
		}
	}
	// Virtual-time profiler: one profiler for the whole run; every simulated
	// nanosecond the workload spends is attributed to (thread, phase,
	// category) and written out as pprof protobuf after the run.
	var prof *vtprof.Profiler
	if f.vtprofDir != "" {
		prof = vtprof.New()
	}

	var srv *obshttp.Server
	if f.serve != "" {
		opts := obshttp.Options{Recorder: rec, DebugPprof: f.servePprof}
		if prof != nil {
			opts.VTProf = func() ([]byte, error) { return prof.Snapshot().PprofBytes() }
		}
		srv, err = obshttp.Start(f.serve, opts)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "quartzrun: serving introspection on %s\n", srv.URL())
	}

	env, err := bench.NewEnv(bench.EnvConfig{
		Preset: preset, Machine: mc, Mode: mode, Quartz: q,
		Lookahead: 2 * sim.Microsecond, Profiler: prof,
	})
	if err != nil {
		return err
	}

	fmt.Printf("machine: %s  mode: %s  workload: %s\n", env.Mach.Config().Name, mode, f.workload)
	if mode == bench.Emulated {
		fmt.Printf("emulator: %s\n", env.Emu)
	}

	if err := dispatch(env, f); err != nil {
		return err
	}

	if env.Emu != nil {
		st := env.Emu.Stats()
		fmt.Printf("\nemulator stats: epochs=%d (max=%d sync=%d) injected=%v overhead=%v\n",
			st.Epochs, st.MaxEpochs, st.SyncEpochs, st.Injected, st.Overhead)
		if env.Emu.Config().NVMWriteLatency > 0 {
			fmt.Printf("store model: store-misses=%d write-delay=%v\n", st.StoreMisses, st.WriteDelay)
		}
		fmt.Printf("feedback: %s\n", st.Suggestion())
	}

	if rec != nil {
		if err := exportObservability(rec, f); err != nil {
			return err
		}
	}
	if prof != nil {
		if err := writeVTProf(prof, f.vtprofDir); err != nil {
			return fmt.Errorf("-vtprof: %w", err)
		}
	}
	if srv != nil && f.serveLinger > 0 {
		fmt.Fprintf(os.Stderr, "quartzrun: introspection server lingering %s\n", f.serveLinger)
		time.Sleep(f.serveLinger)
	}
	if err := rec.CloseSink(); err != nil {
		return fmt.Errorf("ledger sink: %w", err)
	}
	return nil
}

// writeVTProf writes the run's virtual-time profile into dir as
// run.pb.gz (pprof protobuf, `go tool pprof` loadable) and run.folded
// (Brendan Gregg folded stacks, flamegraph.pl input).
func writeVTProf(prof *vtprof.Profiler, dir string) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	p := prof.Snapshot()
	b, err := p.PprofBytes()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "run.pb.gz"), b, 0o666); err != nil {
		return err
	}
	ff, err := os.Create(filepath.Join(dir, "run.folded"))
	if err != nil {
		return err
	}
	werr := p.WriteFolded(ff)
	if cerr := ff.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// exportObservability writes the trace file and/or metrics snapshot.
func exportObservability(rec *obs.Recorder, f flags) error {
	if f.tracePath != "" {
		tf, err := os.Create(f.tracePath)
		if err != nil {
			return err
		}
		werr := rec.WriteChromeTrace(tf)
		if cerr := tf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace: %w", werr)
		}
	}
	if f.metrics {
		if err := rec.WriteMetricsJSON(os.Stdout); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	if f.metricsOut != "" {
		mf, err := os.Create(f.metricsOut)
		if err != nil {
			return err
		}
		werr := rec.WriteMetricsJSON(mf)
		if cerr := mf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing metrics: %w", werr)
		}
	}
	return nil
}

func dispatch(env *bench.Env, f flags) error {
	switch f.workload {
	case "memlat":
		ml, err := bench.BuildMemLat(env.Proc, bench.MemLatConfig{
			Lines: f.lines, Chains: f.threads, Iters: f.iters,
			Node: env.AllocNode(), Seed: f.seed,
		})
		if err != nil {
			return err
		}
		return env.Run(func(e *bench.Env, th *simos.Thread) {
			start := th.Now()
			res := ml.Run(th)
			e.CloseEpoch(th)
			ct := th.Now() - start
			fmt.Printf("memlat: CT=%v  per-iteration=%.1fns  accesses=%d\n",
				ct, (ct / sim.Time(f.iters)).Nanoseconds(), res.Accesses)
		})
	case "stream":
		return env.Run(func(e *bench.Env, th *simos.Thread) {
			res, err := bench.RunStream(e, th, bench.StreamConfig{
				Lines: f.lines, Threads: max(1, f.threads), Node: env.AllocNode(),
			})
			if err != nil {
				th.Failf("%v", err)
			}
			fmt.Printf("stream: CT=%v  copy=%.2f GB/s\n", res.CT, res.BytesPerSec/1e9)
		})
	case "multithreaded":
		return env.Run(func(e *bench.Env, th *simos.Thread) {
			res, err := bench.RunMultiThreaded(e, th, bench.MTConfig{
				Threads: max(2, f.threads), Sections: f.iters / 100,
				CSDur: 100, OutDur: 100, Lines: f.lines / 4,
				Node: env.AllocNode(), Seed: f.seed,
			})
			if err != nil {
				th.Failf("%v", err)
			}
			fmt.Printf("multithreaded: CT=%v\n", res.CT)
		})
	case "multilat":
		if env.Emu == nil || !env.Emu.Config().TwoMemory {
			return fmt.Errorf("multilat needs -mode emulated -two-memory")
		}
		ml, err := bench.BuildMultiLat(env.Proc, env.Emu, bench.MultiLatConfig{
			DRAMLines: f.lines / 8, NVMLines: f.lines / 16,
			DRAMBurst: 2000, NVMBurst: 1000, Seed: f.seed,
		})
		if err != nil {
			return err
		}
		return env.Run(func(e *bench.Env, th *simos.Thread) {
			start := th.Now()
			res := ml.Run(th, env.Mach.Config().LocalLat, env.Emu.Config().NVMLatency)
			e.CloseEpoch(th)
			res.CT = th.Now() - start
			fmt.Printf("multilat: CT=%v  expected=%v  error=%.2f%%\n",
				res.CT, res.ExpectedCT,
				100*float64(res.CT-res.ExpectedCT)/float64(res.ExpectedCT))
		})
	case "kvstore":
		alloc := env.Proc.Malloc
		if env.Emu != nil {
			alloc = env.Emu.PMalloc
		}
		store, err := kvstore.New(env.Proc, kvstore.Config{Partitions: 16, Alloc: alloc})
		if err != nil {
			return err
		}
		return env.Run(func(e *bench.Env, th *simos.Thread) {
			res, err := kvstore.RunWorkload(store, th, kvstore.WorkloadConfig{
				Preload: f.iters / 2, Threads: max(1, f.threads),
				OpsPerThread: f.iters, GetFraction: 0.5, Seed: uint64(f.seed),
			}, e.CloseEpoch)
			if err != nil {
				th.Failf("%v", err)
			}
			fmt.Printf("kvstore: CT=%v  put/s=%.0f  get/s=%.0f\n", res.CT, res.PutsPerS, res.GetsPerS)
		})
	case "pagerank", "bfs":
		alloc := func(size uintptr) (uintptr, error) {
			return env.Proc.MallocOnNode(size, env.AllocNode())
		}
		if env.Emu != nil && env.Emu.Config().TwoMemory {
			alloc = env.Emu.PMalloc // graph in NVM
		}
		g, err := pagerank.Generate(pagerank.GenerateConfig{
			Vertices: max(1000, f.iters/10), EdgesPerVertex: 8, Seed: uint64(f.seed),
		}, alloc)
		if err != nil {
			return err
		}
		return env.Run(func(e *bench.Env, th *simos.Thread) {
			if f.workload == "bfs" {
				res, err := graph500.BFS(g, th, 0, alloc)
				if err != nil {
					th.Failf("%v", err)
				}
				fmt.Printf("bfs: CT=%v  visited=%d  edges=%d  TEPS=%.3g\n",
					res.CT, res.Visited, res.EdgesTraversed, res.TEPS)
				return
			}
			res, err := pagerank.Run(g, th, pagerank.DefaultConfig(), alloc)
			if err != nil {
				th.Failf("%v", err)
			}
			e.CloseEpoch(th)
			fmt.Printf("pagerank: CT=%v  iterations=%d  residual=%.3g\n",
				res.CT, res.Iterations, res.Error)
		})
	default:
		return fmt.Errorf("unknown workload %q", f.workload)
	}
}
