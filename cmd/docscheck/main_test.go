package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsDeadAndLiveLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "doc", "a.md"), strings.Join([]string{
		"[live sibling](b.md)",
		"[live parent](../README.md)",
		"[live with fragment](b.md#section)",
		"[external](https://example.com/x.md)",
		"[anchor only](#local)",
		"[dead](missing.md)",
		"```",
		"[inside code fence](also-missing.md)",
		"```",
		"![dead image](img/nope.png)",
	}, "\n"))
	write(t, filepath.Join(dir, "doc", "b.md"), "b")
	write(t, filepath.Join(dir, "README.md"), "[into doc](doc/a.md)")

	dead, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 2 {
		t.Fatalf("dead links = %v, want exactly missing.md and img/nope.png", dead)
	}
	for _, d := range dead {
		if !strings.Contains(d, "missing.md") && !strings.Contains(d, "img/nope.png") {
			t.Errorf("unexpected dead link %q", d)
		}
		if !strings.Contains(d, "a.md:") {
			t.Errorf("dead link %q does not cite file:line", d)
		}
	}
}

// TestRepoDocsHaveNoDeadLinks runs the real check over this repository —
// the same gate `make docs-check` applies in CI.
func TestRepoDocsHaveNoDeadLinks(t *testing.T) {
	dead, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dead {
		t.Errorf("dead link: %s", d)
	}
}
