// Command docscheck validates the repository's Markdown documentation: it
// walks every *.md file and verifies that each relative link target exists
// on disk. It catches the classic doc-rot failure — a file is moved or
// renamed and a chapter cross-reference quietly dies.
//
// Usage:
//
//	docscheck [root]
//
// root defaults to the current directory. External links (http/https/
// mailto) and pure in-page anchors (#section) are skipped; a fragment on a
// relative link (config.md#epochs) is checked against the file only. Exit
// code 1 means at least one dead link, with every offender listed as
// file:line: target.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links [text](target). Images ![alt](src)
// are matched too (the [ preceding ! is not required), which is what we
// want: image targets must exist as well.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dead, err := check(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, d := range dead {
		fmt.Println(d)
	}
	if len(dead) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d dead link(s)\n", len(dead))
		os.Exit(1)
	}
}

// check walks root for Markdown files and returns one "file:line: target"
// entry per dead relative link.
func check(root string) ([]string, error) {
	var dead []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and vendored trees; everything else is
			// fair game (doc/, docs/, top-level files).
			switch d.Name() {
			case ".git", "vendor", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		fileDead, err := checkFile(path)
		if err != nil {
			return err
		}
		dead = append(dead, fileDead...)
		return nil
	})
	return dead, err
}

// checkFile scans one Markdown file for dead relative links.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dead []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		// Links inside fenced code blocks are examples, not references.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			// Drop the fragment; only the file's existence is checked.
			if j := strings.IndexByte(target, '#'); j >= 0 {
				target = target[:j]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				dead = append(dead, fmt.Sprintf("%s:%d: %s", path, i+1, m[1]))
			}
		}
	}
	return dead, nil
}

// skippable reports whether a link target is out of scope for the on-disk
// check: absolute URLs, mail links, and pure in-page anchors.
func skippable(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
