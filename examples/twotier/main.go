// Two-tier memory placement: the §3.3 DRAM+NVM design-space study. The
// emulator's virtual topology backs pmalloc with the remote socket, so the
// same PageRank computation can be run with three data placements:
//
//  1. everything in DRAM (the upper bound),
//  2. everything in NVM (the naive port),
//  3. hot rank vectors in DRAM + the large, cold graph in NVM
//     (the placement §3.3 argues application designers should reach for).
//
// The output shows placement 3 recovering most of the DRAM-only performance
// while keeping the big array in cheap persistent memory.
package main

import (
	"fmt"
	"os"

	"github.com/quartz-emu/quartz"
	"github.com/quartz-emu/quartz/internal/apps/pagerank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "twotier example: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const nvmLatNS = 500
	fmt.Printf("PageRank with two memory types (NVM emulated at %dns, Ivy Bridge)\n\n", nvmLatNS)
	fmt.Printf("%-34s  %-10s  %s\n", "placement", "CT (ms)", "vs all-DRAM")

	type placement struct {
		name       string
		graphInNVM bool
		ranksInNVM bool
	}
	placements := []placement{
		{"all in DRAM", false, false},
		{"all in NVM", true, true},
		{"graph in NVM, rank vectors in DRAM", true, false},
	}

	var base float64
	for _, pl := range placements {
		ct, err := runPlacement(nvmLatNS, pl.graphInNVM, pl.ranksInNVM)
		if err != nil {
			return fmt.Errorf("%s: %w", pl.name, err)
		}
		if base == 0 {
			base = ct
		}
		fmt.Printf("%-34s  %-10.2f  %.2fx\n", pl.name, ct, ct/base)
	}
	fmt.Println()
	fmt.Println("keeping only the hot vectors in DRAM recovers most of the all-DRAM")
	fmt.Println("performance: the streaming edge reads prefetch well even from slow NVM.")
	return nil
}

func runPlacement(nvmLatNS float64, graphInNVM, ranksInNVM bool) (float64, error) {
	// A scaled testbed: the Ivy Bridge preset with its L3 shrunk so the
	// graph and rank vectors relate to the cache the way the paper's
	// 4.8M-vertex graph relates to a 25 MiB L3 (see DESIGN.md §6).
	mcfg := quartz.PresetMachineConfig(quartz.IvyBridge)
	mcfg.L3.SizeBytes = 256 << 10
	mcfg.L3.Ways = 16
	sys, err := quartz.NewCustomSystem(mcfg, quartz.Config{
		NVMLatency: quartz.Nanoseconds(nvmLatNS),
		TwoMemory:  true, // virtual topology: socket 1 backs pmalloc (§3.3)
		InitCycles: 1,
	})
	if err != nil {
		return 0, err
	}
	dram := sys.Malloc
	nvm := sys.PMalloc
	graphAlloc, rankAlloc := dram, dram
	if graphInNVM {
		graphAlloc = nvm
	}
	if ranksInNVM {
		rankAlloc = nvm
	}

	g, err := pagerank.Generate(pagerank.GenerateConfig{
		Vertices:       20_000,
		EdgesPerVertex: 8,
		Seed:           3,
	}, graphAlloc)
	if err != nil {
		return 0, err
	}
	var ctMS float64
	err = sys.Run(func(t *quartz.Thread) {
		cfg := pagerank.DefaultConfig()
		cfg.MaxIters = 10
		cfg.RankAlloc = rankAlloc
		start := t.Now()
		if _, rerr := pagerank.Run(g, t, cfg, graphAlloc); rerr != nil {
			t.Failf("pagerank: %v", rerr)
		}
		sys.Emulator.CloseEpoch(t)
		ctMS = (t.Now() - start).Milliseconds()
	})
	return ctMS, err
}
