// PageRank sensitivity study: the paper's §4.7 graph-analytics experiment.
// PageRank streams the edge array (prefetch-friendly) while gathering
// source ranks at random (latency-bound); its completion time under a sweep
// of emulated NVM latencies shows Fig. 16's non-linearity — nearly flat at
// 2x DRAM latency, several-fold slower at microsecond latencies.
package main

import (
	"fmt"
	"os"

	"github.com/quartz-emu/quartz"
	"github.com/quartz-emu/quartz/internal/apps/pagerank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pagerank example: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("PageRank (20k vertices, 160k edges) under emulated NVM")
	fmt.Println()
	fmt.Printf("%-14s  %-10s  %-8s  %s\n", "NVM latency", "CT (ms)", "iters", "vs DRAM")

	var base float64
	for _, targetNS := range []float64{87, 200, 500, 1000, 2000} {
		res, err := pageRankAt(targetNS)
		if err != nil {
			return err
		}
		ct := res.CT.Milliseconds()
		if base == 0 {
			base = ct
		}
		label := fmt.Sprintf("%.0fns", targetNS)
		if targetNS == 87 {
			label = "DRAM (87ns)"
		}
		fmt.Printf("%-14s  %-10.2f  %-8d  %.2fx\n", label, ct, res.Iterations, ct/base)
	}
	return nil
}

func pageRankAt(targetNS float64) (pagerank.Result, error) {
	// A scaled testbed (DESIGN.md §6): the rank vectors exceed the L3 the
	// way 4.8M-vertex vectors exceed a 25 MiB cache.
	mcfg := quartz.PresetMachineConfig(quartz.IvyBridge)
	mcfg.L3.SizeBytes = 256 << 10
	mcfg.L3.Ways = 16
	sys, err := quartz.NewCustomSystem(mcfg, quartz.Config{
		NVMLatency: quartz.Nanoseconds(targetNS),
		InitCycles: 1,
	})
	if err != nil {
		return pagerank.Result{}, err
	}
	g, err := pagerank.Generate(pagerank.GenerateConfig{
		Vertices:       20_000,
		EdgesPerVertex: 8,
		Seed:           3,
	}, sys.PMalloc)
	if err != nil {
		return pagerank.Result{}, err
	}
	var res pagerank.Result
	err = sys.Run(func(t *quartz.Thread) {
		cfg := pagerank.DefaultConfig()
		cfg.MaxIters = 10
		start := t.Now()
		r, rerr := pagerank.Run(g, t, cfg, sys.PMalloc)
		if rerr != nil {
			t.Failf("pagerank: %v", rerr)
		}
		sys.Emulator.CloseEpoch(t)
		r.CT = t.Now() - start
		res = r
	})
	return res, err
}
