// KV-store sensitivity study: the paper's §4.7 MassTree experiment in
// miniature. A concurrent ordered key-value store runs a 50/50 put/get mix
// under a sweep of emulated NVM latencies and reports throughput relative
// to DRAM speed — reproducing Fig. 16's non-linear degradation.
package main

import (
	"fmt"
	"os"

	"github.com/quartz-emu/quartz"
	"github.com/quartz-emu/quartz/internal/apps/kvstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "kvstore example: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("KV store under emulated NVM (4 threads, 50/50 put/get)")
	fmt.Println()
	fmt.Printf("%-14s  %-12s  %-12s  %s\n", "NVM latency", "put/s", "get/s", "vs DRAM")

	var base float64
	for _, targetNS := range []float64{87, 200, 500, 1000, 2000} {
		res, err := throughputAt(targetNS)
		if err != nil {
			return err
		}
		total := res.PutsPerS + res.GetsPerS
		if base == 0 {
			base = total
		}
		label := fmt.Sprintf("%.0fns", targetNS)
		if targetNS == 87 {
			label = "DRAM (87ns)"
		}
		fmt.Printf("%-14s  %-12.0f  %-12.0f  %.2fx\n", label, res.PutsPerS, res.GetsPerS, total/base)
	}
	fmt.Println()
	fmt.Println("throughput falls slowly up to a few hundred ns, then sharply — the")
	fmt.Println("tree's upper levels are cache-resident, but leaf reads pay full latency.")
	return nil
}

func throughputAt(targetNS float64) (kvstore.WorkloadResult, error) {
	// A scaled testbed (DESIGN.md §6): hot tree levels stay cache-resident
	// while the value arena misses, like MassTree's cache-crafted levels on
	// a 20 MiB L3 against GB-scale data.
	mcfg := quartz.PresetMachineConfig(quartz.IvyBridge)
	mcfg.L3.SizeBytes = 2 << 20
	mcfg.L3.Ways = 16
	sys, err := quartz.NewCustomSystem(mcfg, quartz.Config{
		NVMLatency: quartz.Nanoseconds(targetNS),
		MinEpoch:   quartz.Milliseconds(0.05), // §3.2 tuning for sub-us critical sections
		InitCycles: 1,
	})
	if err != nil {
		return kvstore.WorkloadResult{}, err
	}
	store, err := kvstore.New(sys.Process, kvstore.Config{
		Partitions: 16,
		Alloc:      sys.PMalloc, // the whole store lives in persistent memory
	})
	if err != nil {
		return kvstore.WorkloadResult{}, err
	}
	var res kvstore.WorkloadResult
	err = sys.Run(func(t *quartz.Thread) {
		var rerr error
		res, rerr = kvstore.RunWorkload(store, t, kvstore.WorkloadConfig{
			Preload:      8_000,
			Threads:      4,
			OpsPerThread: 2_000,
			GetFraction:  0.5,
			ValueBytes:   1024,
			ValueAlloc:   sys.PMalloc,
			Seed:         7,
		}, sys.Emulator.CloseEpoch)
		if rerr != nil {
			t.Failf("workload: %v", rerr)
		}
	})
	return res, err
}
