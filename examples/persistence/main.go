// Persistent-write ordering: the §3.1 / §6 write story. Crash-consistent
// persistent-memory code must order its writes to NVM; Quartz emulates slow
// NVM writes at those ordering points. This example initializes a batch of
// persistent objects (several fields each) three ways:
//
//  1. no persistence (posted stores only — the volatile upper bound),
//  2. pflush after every field (clflush + write delay, pessimistically
//     serialized, §3.1),
//  3. clflushopt per field + one pcommit barrier per object (§6's
//     extension: independent writes overlap; only the barrier waits).
//
// The output shows pcommit recovering most of the serialization cost while
// preserving per-object durability ordering.
package main

import (
	"fmt"
	"os"

	"github.com/quartz-emu/quartz"
)

const (
	objects      = 2_000
	fieldsPerObj = 8
	writeLatNS   = 700
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "persistence example: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("initializing %d persistent objects x %d fields (NVM write latency %dns)\n\n",
		objects, fieldsPerObj, writeLatNS)
	fmt.Printf("%-34s  %-10s  %s\n", "write model", "CT (ms)", "vs volatile")

	type mode int
	const (
		volatile mode = iota
		pflush
		pcommit
	)
	names := map[mode]string{
		volatile: "posted stores (no durability)",
		pflush:   "pflush per field (serialized)",
		pcommit:  "clflushopt + pcommit per object",
	}

	var base float64
	for _, m := range []mode{volatile, pflush, pcommit} {
		ct, err := initObjects(m == pflush, m == pcommit)
		if err != nil {
			return err
		}
		if base == 0 {
			base = ct
		}
		fmt.Printf("%-34s  %-10.2f  %.1fx\n", names[m], ct, ct/base)
	}
	fmt.Println()
	fmt.Println("pcommit lets the eight independent field writes of each object drain")
	fmt.Println("in parallel; only the commit barrier pays the residual write latency.")
	return nil
}

func initObjects(usePFlush, usePCommit bool) (ctMS float64, err error) {
	sys, err := quartz.NewSystem(quartz.IvyBridge, quartz.Config{
		NVMLatency:   quartz.Nanoseconds(500),
		WriteLatency: quartz.Nanoseconds(writeLatNS),
		InitCycles:   1,
	})
	if err != nil {
		return 0, err
	}
	err = sys.Run(func(t *quartz.Thread) {
		base, perr := sys.PMalloc(objects * fieldsPerObj * 64)
		if perr != nil {
			t.Failf("pmalloc: %v", perr)
		}
		start := t.Now()
		for o := 0; o < objects; o++ {
			objBase := base + uintptr(o*fieldsPerObj*64)
			for f := 0; f < fieldsPerObj; f++ {
				addr := objBase + uintptr(f*64)
				t.Store(addr)
				switch {
				case usePFlush:
					sys.Emulator.PFlush(t, addr)
				case usePCommit:
					sys.Emulator.PFlushOpt(t, addr)
				}
			}
			if usePCommit {
				sys.Emulator.PCommit(t) // object becomes durable here
			}
		}
		sys.Emulator.CloseEpoch(t)
		ctMS = (t.Now() - start).Milliseconds()
	})
	return ctMS, err
}
