// Write-ahead-log design study: how should a crash-consistent log commit to
// NVM? Quartz's purpose is answering exactly this kind of question before
// the hardware exists. The study sweeps the commit batch size under two
// write models — §3.1's serialized pflush and §6's clflushopt+pcommit —
// and two emulated NVM write latencies, printing the durable-append
// throughput of each design point.
package main

import (
	"fmt"
	"os"

	"github.com/quartz-emu/quartz"
	"github.com/quartz-emu/quartz/internal/apps/pmlog"
)

const (
	records    = 2_000
	recordSize = 192
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "walog example: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("WAL design study: %d durable appends of %dB records\n\n", records, recordSize)
	for _, writeNS := range []float64{300, 1000} {
		fmt.Printf("NVM write latency %.0fns:\n", writeNS)
		fmt.Printf("  %-26s  %-14s  %s\n", "design", "appends/s", "commit stall")
		for _, design := range []struct {
			name       string
			usePCommit bool
			batch      int
		}{
			{"pflush, commit each", false, 1},
			{"pcommit, commit each", true, 1},
			{"pcommit, batch 8", true, 8},
			{"pcommit, batch 64", true, 64},
		} {
			rate, stall, err := measure(writeNS, design.usePCommit, design.batch)
			if err != nil {
				return err
			}
			fmt.Printf("  %-26s  %-14.0f  %v\n", design.name, rate, stall)
		}
		fmt.Println()
	}
	fmt.Println("group commit amortizes the NVM write latency; the pcommit model lets a")
	fmt.Println("record's lines drain in parallel where pflush serializes them (§6).")
	return nil
}

func measure(writeNS float64, usePCommit bool, batch int) (appendsPerSec float64, stall quartz.Time, err error) {
	sys, err := quartz.NewSystem(quartz.IvyBridge, quartz.Config{
		NVMLatency:   quartz.Nanoseconds(500),
		WriteLatency: quartz.Nanoseconds(writeNS),
		InitCycles:   1,
	})
	if err != nil {
		return 0, 0, err
	}
	err = sys.Run(func(t *quartz.Thread) {
		log, lerr := pmlog.New(sys.Emulator, t, pmlog.Config{
			Capacity:   8 << 20,
			UsePCommit: usePCommit,
		})
		if lerr != nil {
			t.Failf("log: %v", lerr)
		}
		start := t.Now()
		for i := 0; i < records; i++ {
			if aerr := log.Append(t, recordSize); aerr != nil {
				t.Failf("append: %v", aerr)
			}
			if (i+1)%batch == 0 {
				log.Commit(t)
			}
		}
		log.Commit(t)
		elapsed := t.Now() - start
		if log.DurableRecords() != records {
			t.Failf("only %d of %d records durable", log.DurableRecords(), records)
		}
		appendsPerSec = float64(records) / elapsed.Seconds()
		stall = log.Stats().CommitStall
	})
	return appendsPerSec, stall, err
}
