// Quickstart: attach Quartz to a process, chase pointers through emulated
// persistent memory at a few target latencies, and print the measured
// application-perceived latency — the one-file introduction to the API.
package main

import (
	"fmt"
	"os"

	"github.com/quartz-emu/quartz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Quartz quickstart: emulating NVM read latencies on the Ivy Bridge testbed")
	fmt.Println()
	fmt.Printf("%-12s  %-14s  %s\n", "target (ns)", "measured (ns)", "error")

	for _, targetNS := range []float64{200, 400, 800} {
		measured, err := chaseAt(targetNS)
		if err != nil {
			return err
		}
		fmt.Printf("%-12.0f  %-14.1f  %+.2f%%\n",
			targetNS, measured, 100*(measured-targetNS)/targetNS)
	}
	fmt.Println()
	fmt.Println("each run slows ordinary loads from DRAM down to the target NVM latency")
	fmt.Println("using epoch-based delay injection driven by simulated hardware counters.")
	return nil
}

// chaseAt runs a latency-bound pointer chase under emulation at the given
// target and reports the per-access latency the application observes.
func chaseAt(targetNS float64) (float64, error) {
	sys, err := quartz.NewSystem(quartz.IvyBridge, quartz.Config{
		NVMLatency: quartz.Nanoseconds(targetNS),
		InitCycles: 1, // skip the 2.5s library-init charge for the demo
	})
	if err != nil {
		return 0, err
	}

	const (
		lines = 1 << 19 // 32 MiB working set, larger than the 25 MiB L3
		iters = 40_000
	)
	// A single-cycle random permutation: every access is a demand miss and
	// the next address depends on the current one (latency-bound).
	next := make([]int32, lines)
	perm := make([]int32, lines)
	for i := range perm {
		perm[i] = int32(i)
	}
	x := uint64(1)
	for i := lines - 1; i > 0; i-- {
		x = x*6364136223846793005 + 1442695040888963407
		j := int((x >> 11) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < lines; i++ {
		next[perm[i]] = perm[(i+1)%lines]
	}

	var perAccessNS float64
	err = sys.Run(func(t *quartz.Thread) {
		buf, err := sys.PMalloc(lines * 64)
		if err != nil {
			t.Failf("pmalloc: %v", err)
		}
		cur := int32(0)
		start := t.Now()
		for i := 0; i < iters; i++ {
			t.Load(buf + uintptr(cur)*64)
			cur = next[cur]
		}
		sys.Emulator.CloseEpoch(t)
		perAccessNS = (t.Now() - start).Nanoseconds() / iters
	})
	return perAccessNS, err
}
