module github.com/quartz-emu/quartz

go 1.22
